// Command shogund is the long-lived mining-as-a-service daemon: it
// serves count/mine/simulate queries over HTTP+JSON with admission
// control (bounded worker pool + bounded wait queue, overflow shed with
// 429), per-request governor budgets, a memory-budgeted single-flight
// graph/schedule cache, per-request panic isolation, and a graceful
// drain on SIGTERM/SIGINT (stop admitting, finish or cancel in-flight
// work within -drain, exit 0).
//
// Usage:
//
//	shogund -addr :8477 -workers 8 -queue 16
//	curl -s localhost:8477/v1/count -d '{"dataset":"wi","pattern":"tc"}'
//	curl -s localhost:8477/readyz
//
// Endpoints: POST /v1/count, /v1/mine, /v1/simulate; GET /healthz,
// /readyz, /statz. See DESIGN.md "Serving & overload behavior" for the
// request schema and the typed-error status table.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shogun/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8477", "listen address (\":0\" picks a free port)")
		workers   = flag.Int("workers", 4, "worker pool size (concurrently executing queries)")
		queue     = flag.Int("queue", -1, "wait-queue depth; overflow is shed with 429 (-1 = 2*workers)")
		cacheMB   = flag.Int64("cache-mb", 256, "graph/schedule cache memory budget in MiB")
		bodyMB    = flag.Int64("max-body-mb", 8, "request body (graph upload) cap in MiB")
		maxWall   = flag.Duration("max-wall", 30*time.Second, "per-request wall-clock ceiling (requests may tighten, not exceed)")
		defWall   = flag.Duration("default-wall", 0, "wall budget when a request specifies none (0 = -max-wall)")
		maxEvents = flag.Int64("max-events", 0, "per-request simulation event ceiling (0 = none)")
		miners    = flag.Int("miner-workers", 1, "software-miner goroutines per request")
		drain     = flag.Duration("drain", 15*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (smoke tests)")
		verbose   = flag.Bool("v", false, "log one line per served request")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cacheMB, *bodyMB, *maxWall, *defWall, *maxEvents, *miners, *drain, *addrFile, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "shogund:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, cacheMB, bodyMB int64, maxWall, defWall time.Duration, maxEvents int64, miners int, drain time.Duration, addrFile string, verbose bool) error {
	cfg := serve.Config{
		Addr:         addr,
		Workers:      workers,
		QueueDepth:   queue,
		CacheBytes:   cacheMB << 20,
		MaxBodyBytes: bodyMB << 20,
		MaxWall:      maxWall,
		DefaultWall:  defWall,
		MaxEvents:    maxEvents,
		MinerWorkers: miners,
	}
	switch {
	case queue == -1:
		cfg.QueueDepth = 0 // fill() turns 0 into the 2×workers default
	case queue <= 0:
		cfg.QueueDepth = -1 // literally no wait queue: busy pool sheds instantly
	default:
		cfg.QueueDepth = queue
	}
	if verbose {
		cfg.Log = os.Stderr
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	st := s.StatsSnapshot()
	fmt.Printf("shogund: serving on http://%s/ (workers=%d queue=%d cache=%dMiB drain=%v)\n",
		s.Addr(), st.Admission.Workers, st.Admission.QueueDepth, cacheMB, drain)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			s.Close()
			return fmt.Errorf("addr-file: %w", err)
		}
	}

	// The serve loop and the signal handler race toward done: on
	// SIGTERM/SIGINT the daemon drains (stop admitting → finish or
	// cancel in-flight → exit 0); a second signal aborts immediately.
	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("shogund: %v: draining (deadline %v)\n", sig, drain)
		drained := make(chan error, 1)
		go func() { drained <- s.Drain(drain) }()
		select {
		case err := <-drained:
			if err != nil {
				return err
			}
			if err := <-errc; err != nil {
				return err
			}
			st := s.StatsSnapshot()
			fmt.Printf("shogund: drained clean (served=%d shed=%d refused=%d)\n",
				st.Served, st.Admission.Shed, st.Admission.Refused)
			return nil
		case sig := <-sigc:
			s.Close()
			return fmt.Errorf("second signal (%v) before drain finished, aborting", sig)
		}
	}
}
