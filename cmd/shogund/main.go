// Command shogund is the long-lived mining-as-a-service daemon: it
// serves count/mine/simulate queries over HTTP+JSON with admission
// control (bounded worker pool + bounded wait queue, overflow shed with
// 429), per-request governor budgets, a memory-budgeted single-flight
// graph/schedule cache, per-request panic isolation, and a graceful
// drain on SIGTERM/SIGINT (stop admitting, finish or cancel in-flight
// work within -drain, exit 0).
//
// Usage:
//
//	shogund -addr :8477 -workers 8 -queue 16
//	curl -s localhost:8477/v1/count -d '{"dataset":"wi","pattern":"tc"}'
//	curl -s localhost:8477/readyz
//
// Endpoints: POST /v1/count, /v1/mine, /v1/simulate; GET /healthz,
// /readyz, /statz, /metrics (Prometheus text), /v1/requests and
// /v1/requests/{id} (live in-flight inspection; ?format=chrome exports a
// per-request Chrome trace). See DESIGN.md "Serving & overload behavior"
// and "Request observability" for the request schema, the typed-error
// status table and the tracing plane.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shogun/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8477", "listen address (\":0\" picks a free port)")
		workers   = flag.Int("workers", 4, "worker pool size (concurrently executing queries)")
		queue     = flag.Int("queue", -1, "wait-queue depth; overflow is shed with 429 (-1 = 2*workers)")
		cacheMB   = flag.Int64("cache-mb", 256, "graph/schedule cache memory budget in MiB")
		bodyMB    = flag.Int64("max-body-mb", 8, "request body (graph upload) cap in MiB")
		maxWall   = flag.Duration("max-wall", 30*time.Second, "per-request wall-clock ceiling (requests may tighten, not exceed)")
		defWall   = flag.Duration("default-wall", 0, "wall budget when a request specifies none (0 = -max-wall)")
		maxEvents = flag.Int64("max-events", 0, "per-request simulation event ceiling (0 = none)")
		miners    = flag.Int("miner-workers", 1, "software-miner goroutines per request")
		drain     = flag.Duration("drain", 15*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (smoke tests)")
		verbose   = flag.Bool("v", false, "log one line per served request")

		noObs       = flag.Bool("no-obs", false, "disable the request observability plane (/metrics, /v1/requests, tracing)")
		accessLog   = flag.String("access-log", "", "structured JSON access log path (\"-\" = stderr)")
		slowLog     = flag.String("slow-log", "", "slow-request log path with phase breakdown + governor snapshot (\"-\" = stderr)")
		slowMS      = flag.Int64("slow-ms", 1000, "slow-request threshold in milliseconds")
		sampleEvery = flag.Int64("sample-every", 4096, "epoch-sampler period in cycles for served simulations (0 = off)")
	)
	flag.Parse()
	opts := daemonOpts{
		cacheMB: *cacheMB, drain: *drain, addrFile: *addrFile, verbose: *verbose,
		noObs: *noObs, accessLog: *accessLog, slowLog: *slowLog,
		slowMS: *slowMS, sampleEvery: *sampleEvery,
	}
	cfg := serve.Config{
		Addr:         *addr,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheBytes:   *cacheMB << 20,
		MaxBodyBytes: *bodyMB << 20,
		MaxWall:      *maxWall,
		DefaultWall:  *defWall,
		MaxEvents:    *maxEvents,
		MinerWorkers: *miners,
	}
	if err := run(cfg, *queue, opts); err != nil {
		fmt.Fprintln(os.Stderr, "shogund:", err)
		os.Exit(1)
	}
}

// daemonOpts carries the main-level knobs that are not serve.Config
// fields.
type daemonOpts struct {
	cacheMB     int64
	drain       time.Duration
	addrFile    string
	verbose     bool
	noObs       bool
	accessLog   string
	slowLog     string
	slowMS      int64
	sampleEvery int64
}

// openLog resolves a log-path flag: "" → nil, "-" → stderr, otherwise an
// append-opened file whose closer is returned.
func openLog(path string) (io.Writer, func() error, error) {
	switch path {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stderr, nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run(cfg serve.Config, queue int, opts daemonOpts) error {
	switch {
	case queue == -1:
		cfg.QueueDepth = 0 // fill() turns 0 into the 2×workers default
	case queue <= 0:
		cfg.QueueDepth = -1 // literally no wait queue: busy pool sheds instantly
	default:
		cfg.QueueDepth = queue
	}
	if opts.verbose {
		cfg.Log = os.Stderr
	}
	// The log files must outlive the drain: the plane's buffered writers
	// are flushed by Drain/Close before these closers run.
	var closers []func() error
	defer func() {
		for _, c := range closers {
			c() //nolint:errcheck // exit path
		}
	}()
	if !opts.noObs {
		oc := &serve.ObsConfig{
			SlowThreshold: time.Duration(opts.slowMS) * time.Millisecond,
			SampleEvery:   int(opts.sampleEvery),
		}
		if oc.SampleEvery == 0 {
			oc.SampleEvery = -1 // flag 0 means off; ObsConfig 0 means default
		}
		w, closeFn, err := openLog(opts.accessLog)
		if err != nil {
			return fmt.Errorf("access-log: %w", err)
		}
		oc.AccessLog = w
		if closeFn != nil {
			closers = append(closers, closeFn)
		}
		w, closeFn, err = openLog(opts.slowLog)
		if err != nil {
			return fmt.Errorf("slow-log: %w", err)
		}
		oc.SlowLog = w
		if closeFn != nil {
			closers = append(closers, closeFn)
		}
		cfg.Obs = oc
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	st := s.StatsSnapshot()
	obsState := "on"
	if opts.noObs {
		obsState = "off"
	}
	fmt.Printf("shogund: serving on http://%s/ (workers=%d queue=%d cache=%dMiB drain=%v obs=%s)\n",
		s.Addr(), st.Admission.Workers, st.Admission.QueueDepth, opts.cacheMB, opts.drain, obsState)
	if opts.addrFile != "" {
		if err := os.WriteFile(opts.addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			s.Close()
			return fmt.Errorf("addr-file: %w", err)
		}
	}

	// The serve loop and the signal handler race toward done: on
	// SIGTERM/SIGINT the daemon drains (stop admitting → finish or
	// cancel in-flight → exit 0); a second signal aborts immediately.
	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("shogund: %v: draining (deadline %v)\n", sig, opts.drain)
		drained := make(chan error, 1)
		go func() { drained <- s.Drain(opts.drain) }()
		select {
		case err := <-drained:
			if err != nil {
				return err
			}
			if err := <-errc; err != nil {
				return err
			}
			st := s.StatsSnapshot()
			fmt.Printf("shogund: drained clean (served=%d shed=%d refused=%d)\n",
				st.Served, st.Admission.Shed, st.Admission.Refused)
			return nil
		case sig := <-sigc:
			s.Close()
			return fmt.Errorf("second signal (%v) before drain finished, aborting", sig)
		}
	}
}
