package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenLog(t *testing.T) {
	w, closeFn, err := openLog("")
	if w != nil || closeFn != nil || err != nil {
		t.Fatalf("empty path: (%v, hasCloser=%v, %v), want all nil", w, closeFn != nil, err)
	}

	w, closeFn, err = openLog("-")
	if err != nil || w != os.Stderr || closeFn != nil {
		t.Fatalf("dash path: w=%v hasCloser=%v err=%v, want stderr and no closer", w, closeFn != nil, err)
	}

	path := filepath.Join(t.TempDir(), "access.jsonl")
	w, closeFn, err = openLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("line1\n")); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	// Re-opening appends rather than truncating: a daemon restart must
	// not erase the previous run's access log.
	w, closeFn, err = openLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("line2\n")); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "line1\nline2\n" {
		t.Fatalf("log content %q, want both runs' lines", got)
	}

	if _, _, err := openLog(filepath.Join(t.TempDir(), "missing", "dir", "x.log")); err == nil {
		t.Fatal("unopenable path did not error")
	}
}
