// Command mine runs the software reference miner: exact pattern counting
// with per-depth task statistics, no simulation.
//
// Usage:
//
//	mine -dataset yo -pattern 4cl
//	mine -graph edges.txt -pattern dia_v -list 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"shogun/internal/datasets"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "dataset analogue: wi|as|yo|pa|lj|or")
		graphArg = flag.String("graph", "", "edge-list file (alternative to -dataset)")
		patName  = flag.String("pattern", "tc", "pattern name (tc|tt[_e|_v]|4cl|5cl|dia[_e|_v]|4cyc[_e|_v]|house)")
		list     = flag.Int("list", 0, "print the first N embeddings")
		census   = flag.Int("census", 0, "run a full k-graphlet census instead of one pattern (3..6)")
		workers  = flag.Int("workers", 0, "parallel mining workers (0 = GOMAXPROCS)")
		schedule = flag.Bool("schedule", false, "print the generated schedule and exit")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the mining workers between root chunks and
	// the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *dataset, *graphArg, *patName, *list, *census, *workers, *schedule); err != nil {
		fmt.Fprintln(os.Stderr, "mine:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dataset, graphArg, patName string, list, census, workers int, scheduleOnly bool) error {
	if census > 0 {
		return runCensus(dataset, graphArg, census, workers)
	}
	p, err := pattern.ByName(patName)
	if err != nil {
		return err
	}
	s, err := pattern.BuildWith(p, pattern.BuildOptions{Induced: strings.HasSuffix(patName, "_v")})
	if err != nil {
		return err
	}
	if scheduleOnly {
		fmt.Print(s.String())
		return nil
	}

	var g *graph.Graph
	switch {
	case dataset != "":
		g, err = datasets.Get(dataset)
	case graphArg != "":
		var f *os.File
		if f, err = os.Open(graphArg); err == nil {
			defer f.Close()
			g, err = graph.ReadEdgeList(f)
		}
	default:
		return fmt.Errorf("need -dataset or -graph")
	}
	if err != nil {
		return err
	}

	var res *mine.Result
	start := time.Now()
	if list > 0 {
		// Embedding listing needs the sequential visitor-driven miner.
		m := mine.NewMiner(g, s)
		printed := 0
		m.SetVisitor(func(match []graph.VertexID) {
			if printed < list {
				fmt.Printf("embedding %v\n", match)
				printed++
			}
		})
		res = m.Run()
	} else {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		res, err = mine.ParallelCountContext(ctx, g, s, workers)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("pattern:    %s\n", s.Name)
	fmt.Printf("embeddings: %d\n", res.Embeddings)
	fmt.Printf("tasks/depth:")
	for _, t := range res.TasksPerDepth {
		fmt.Printf(" %d", t)
	}
	fmt.Println()
	fmt.Printf("intermediate lines/task: %.2f (Table 2 metric)\n", res.AvgIntermediateLinesPerTask())
	fmt.Printf("set-op elements: %d\n", res.SetOpElements)
	fmt.Printf("elapsed: %v\n", elapsed)
	return nil
}

func runCensus(dataset, graphArg string, k, workers int) error {
	g, err := loadGraph(dataset, graphArg)
	if err != nil {
		return err
	}
	start := time.Now()
	entries, err := mine.Census(g, k, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %16s %16s\n", "pattern", "edges", "vertex-induced", "edge-induced")
	for _, e := range entries {
		fmt.Printf("%-8s %8d %16d %16d\n", e.Pattern.Name(), e.Pattern.NumEdges(), e.Induced, e.EdgeInduced)
	}
	fmt.Printf("elapsed: %v\n", time.Since(start))
	return nil
}

func loadGraph(dataset, graphArg string) (*graph.Graph, error) {
	switch {
	case dataset != "":
		return datasets.Get(dataset)
	case graphArg != "":
		f, err := os.Open(graphArg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	return nil, fmt.Errorf("need -dataset or -graph")
}
