// Package shogun is a Go reproduction of "Shogun: A Task Scheduling
// Framework for Graph Mining Accelerators" (Wu et al., ISCA 2023).
//
// It bundles three layers behind one API:
//
//   - a pattern-aware graph mining engine (patterns, GraphPi-style
//     schedules with symmetry breaking, a fast software miner),
//   - a cycle-level simulator of a graph mining accelerator (PE
//     pipelines, set-operation functional units, SPM/L1/L2/DRAM/NoC),
//   - the paper's scheduling schemes — BFS, DFS, pseudo-DFS (FINGERS),
//     parallel-DFS, and the Shogun task tree with conservative-mode
//     locality monitoring, task-tree splitting and search-tree merging.
//
// # Quick start
//
//	g := shogun.GenerateRMAT(1<<14, 80_000, 0.6, 0.15, 0.15, 42)
//	s, _ := shogun.BuildSchedule(shogun.FourClique(), false)
//	fmt.Println("4-cliques:", shogun.Count(g, s))            // software
//	cfg := shogun.DefaultSimConfig(shogun.SchemeShogun)
//	res, _ := shogun.Simulate(g, s, cfg)                      // simulated
//	fmt.Println("cycles:", res.Cycles, "IU util:", res.IUUtil)
//
// Everything is deterministic: generators take explicit seeds and the
// simulator's event order is total.
package shogun

import (
	"context"
	"io"
	"os"
	"runtime"

	"shogun/internal/datasets"
	"shogun/internal/gen"
	"shogun/internal/graph"
	"shogun/internal/mine"
	"shogun/internal/pattern"
)

// Graph is an immutable undirected graph in CSR form with sorted
// neighbor lists.
type Graph = graph.Graph

// Edge is an undirected edge.
type Edge = graph.Edge

// VertexID identifies a graph vertex.
type VertexID = graph.VertexID

// GraphStats summarizes a graph's structure.
type GraphStats = graph.Stats

// NewGraph builds a simple undirected graph from an edge list; self
// loops and duplicates are dropped.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// ReadGraph parses a whitespace-separated edge list ("u v" per line,
// '#'/'%' comments).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// LoadGraph reads an edge-list file from disk.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// GenerateRMAT produces a recursive-matrix (skewed, social-network-like)
// random graph. Larger a means heavier skew. Invalid parameters (n < 1,
// m < 0, negative probabilities, a+b+c >= 1) panic at this boundary
// with a precise message; use ValidateRMAT first to get an error
// instead.
func GenerateRMAT(n, m int, a, b, c float64, seed int64) *Graph {
	return gen.RMAT(n, m, a, b, c, seed)
}

// ValidateRMAT reports whether GenerateRMAT's parameters are valid.
func ValidateRMAT(n, m int, a, b, c float64) error { return gen.ValidateRMAT(n, m, a, b, c) }

// GenerateErdosRenyi produces a uniform G(n,m) random graph. Invalid
// parameters (n < 1, m < 0) panic at this boundary; use
// ValidateErdosRenyi first to get an error instead.
func GenerateErdosRenyi(n, m int, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// ValidateErdosRenyi reports whether GenerateErdosRenyi's parameters
// are valid.
func ValidateErdosRenyi(n, m int) error { return gen.ValidateErdosRenyi(n, m) }

// GenerateBarabasiAlbert produces a preferential-attachment graph with k
// edges per new vertex. Invalid parameters (n < 1, k < 1) panic at this
// boundary; use ValidateBarabasiAlbert first to get an error instead.
func GenerateBarabasiAlbert(n, k int, seed int64) *Graph { return gen.BarabasiAlbert(n, k, seed) }

// ValidateBarabasiAlbert reports whether GenerateBarabasiAlbert's
// parameters are valid.
func ValidateBarabasiAlbert(n, k int) error { return gen.ValidateBarabasiAlbert(n, k) }

// GeneratePowerLawCluster produces a Holme–Kim power-law graph with
// triangle closure probability p (collaboration-network-like). Invalid
// parameters (n < 1, k < 1, p outside [0, 1]) panic at this boundary;
// use ValidatePowerLawCluster first to get an error instead.
func GeneratePowerLawCluster(n, k int, p float64, seed int64) *Graph {
	return gen.PowerLawCluster(n, k, p, seed)
}

// ValidatePowerLawCluster reports whether GeneratePowerLawCluster's
// parameters are valid.
func ValidatePowerLawCluster(n, k int, p float64) error { return gen.ValidatePowerLawCluster(n, k, p) }

// GenerateNearRegular produces a low-degree-variance random graph
// (citation-network-like). Invalid parameters (n < 1, k < 0) panic at
// this boundary; use ValidateNearRegular first to get an error instead.
func GenerateNearRegular(n, k int, seed int64) *Graph { return gen.NearRegular(n, k, seed) }

// ValidateNearRegular reports whether GenerateNearRegular's parameters
// are valid.
func ValidateNearRegular(n, k int) error { return gen.ValidateNearRegular(n, k) }

// Dataset returns one of the six named dataset analogues standing in for
// the paper's Table 4 graphs: "wi", "as", "yo", "pa", "lj", "or" (see
// DESIGN.md for the substitution rationale). Graphs are cached.
func Dataset(name string) (*Graph, error) { return datasets.Get(name) }

// DatasetNames lists the analogue names in the paper's order.
func DatasetNames() []string { return datasets.Names() }

// Pattern is a small connected graph to search for.
type Pattern = pattern.Pattern

// Schedule is an executable pattern-aware mining schedule (matching
// order, per-depth set operations, symmetry-breaking restrictions).
type Schedule = pattern.Schedule

// The paper's evaluated patterns.

// Triangle returns the 3-clique pattern (tc).
func Triangle() Pattern { return pattern.Triangle() }

// FourClique returns the 4-clique pattern (4cl).
func FourClique() Pattern { return pattern.FourClique() }

// FiveClique returns the 5-clique pattern (5cl).
func FiveClique() Pattern { return pattern.FiveClique() }

// TailedTriangle returns the tailed-triangle pattern (tt).
func TailedTriangle() Pattern { return pattern.TailedTriangle() }

// Diamond returns the diamond pattern (dia).
func Diamond() Pattern { return pattern.Diamond() }

// FourCycle returns the 4-cycle pattern (4cyc).
func FourCycle() Pattern { return pattern.FourCycle() }

// Clique returns the k-clique pattern.
func Clique(k int) Pattern { return pattern.CliqueN(k) }

// NewPattern builds a custom pattern from an edge list over [0, n).
func NewPattern(name string, n int, edges [][2]int) (Pattern, error) {
	return pattern.NewPattern(name, n, edges)
}

// PatternByName resolves the paper's names: tc, tt, 4cl, 5cl, dia, 4cyc
// (an _e/_v suffix is accepted and stripped).
func PatternByName(name string) (Pattern, error) { return pattern.ByName(name) }

// BuildSchedule generates a mining schedule for p. induced selects
// vertex-induced semantics (pattern non-edges must be absent).
func BuildSchedule(p Pattern, induced bool) (*Schedule, error) {
	return pattern.BuildWith(p, pattern.BuildOptions{Induced: induced})
}

// MineResult carries software-mining statistics (task counts per depth,
// intermediate-data locality metrics, exact embedding count).
type MineResult = mine.Result

// Count mines g for schedule s in software and returns the number of
// unique embeddings.
func Count(g *Graph, s *Schedule) int64 { return mine.Count(g, s) }

// CountContext mines g in parallel (GOMAXPROCS workers) under a
// context: workers observe ctx between root chunks, so a cancelled
// context stops the mine promptly with an error wrapping
// ErrSimCancelled. A panic inside the miner is contained and returned
// as an *InvariantError.
func CountContext(ctx context.Context, g *Graph, s *Schedule) (int64, error) {
	r, err := mine.ParallelCountContext(ctx, g, s, runtime.GOMAXPROCS(0))
	if err != nil {
		return 0, err
	}
	return r.Embeddings, nil
}

// Mine runs the software miner and returns full statistics.
func Mine(g *Graph, s *Schedule) *MineResult { return mine.NewMiner(g, s).Run() }

// MineEach mines g and invokes visit once per embedding (matched
// vertices by position; do not retain the slice).
func MineEach(g *Graph, s *Schedule, visit func(m []VertexID)) *MineResult {
	m := mine.NewMiner(g, s)
	m.SetVisitor(mine.Visitor(visit))
	return m.Run()
}
