package shogun_test

import (
	"fmt"

	"shogun"
)

// Counting a pattern in software: build a schedule, run the miner.
func Example() {
	g, _ := shogun.NewGraph(5, []shogun.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, // triangle
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2}, // another triangle
	})
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	fmt.Println(shogun.Count(g, s))
	// Output: 2
}

// Simulating the accelerator: the simulator computes the exact count too.
func ExampleSimulate() {
	g := shogun.GenerateErdosRenyi(100, 400, 1)
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	cfg := shogun.DefaultSimConfig(shogun.SchemeShogun)
	cfg.NumPEs = 2
	res, _ := shogun.Simulate(g, s, cfg)
	fmt.Println(res.Embeddings == shogun.Count(g, s))
	// Output: true
}

// Comparing scheduling schemes on the same workload.
func ExampleSimulate_schemes() {
	g := shogun.GenerateErdosRenyi(150, 700, 2)
	s, _ := shogun.BuildSchedule(shogun.FourClique(), false)
	want := shogun.Count(g, s)
	agree := true
	for _, scheme := range []shogun.Scheme{shogun.SchemeDFS, shogun.SchemeFingers, shogun.SchemeShogun} {
		cfg := shogun.DefaultSimConfig(scheme)
		cfg.NumPEs = 2
		res, _ := shogun.Simulate(g, s, cfg)
		agree = agree && res.Embeddings == want
	}
	fmt.Println(agree)
	// Output: true
}

// Vertex-induced semantics: pattern non-edges must be absent.
func ExampleBuildSchedule_induced() {
	edge, _ := shogun.BuildSchedule(shogun.Diamond(), false)
	vert, _ := shogun.BuildSchedule(shogun.Diamond(), true)
	// K4 contains 6 edge-induced diamonds but no vertex-induced ones
	// (the diamond's missing edge is always present in a clique).
	k4, _ := shogun.NewGraph(4, []shogun.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
	})
	fmt.Println(shogun.Count(k4, edge), shogun.Count(k4, vert))
	// Output: 6 0
}

// Listing embeddings with a visitor.
func ExampleMineEach() {
	g, _ := shogun.NewGraph(4, []shogun.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
	})
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	shogun.MineEach(g, s, func(m []shogun.VertexID) {
		fmt.Println(m)
	})
	// Output: [2 1 0]
}
