package shogun_test

import (
	"bytes"
	"strings"
	"testing"

	"shogun"
)

func TestOptimizedScheduleThroughAPI(t *testing.T) {
	g := shogun.GenerateRMAT(1<<10, 6000, 0.6, 0.15, 0.15, 9)
	p := shogun.TailedTriangle()
	def, _ := shogun.BuildSchedule(p, false)
	opt, err := shogun.OptimizeSchedule(p, shogun.ShapeOf(g), false)
	if err != nil {
		t.Fatal(err)
	}
	if shogun.Count(g, def) != shogun.Count(g, opt) {
		t.Fatal("optimized schedule changed the count")
	}
}

func TestParsePatternAPI(t *testing.T) {
	p, err := shogun.ParsePattern("square", "0-1,1-2,2-3,3-0")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shogun.BuildSchedule(p, false)
	grid, _ := shogun.NewGraph(4, []shogun.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	if got := shogun.Count(grid, s); got != 1 {
		t.Fatalf("squares in C4 = %d", got)
	}
}

func TestParallelCountAPI(t *testing.T) {
	g := shogun.GenerateChungLu(2000, 12000, 0.6, 200, 4)
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	if shogun.ParallelCount(g, s, 4).Embeddings != shogun.Count(g, s) {
		t.Fatal("parallel count disagrees")
	}
}

func TestDegeneracyAPI(t *testing.T) {
	g := shogun.GenerateRMAT(512, 3000, 0.6, 0.15, 0.15, 8)
	d, order := shogun.Degeneracy(g)
	if d <= 0 || len(order) != g.NumVertices() {
		t.Fatalf("degeneracy %d, order len %d", d, len(order))
	}
	h, err := shogun.OrientByDegeneracy(g)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	if shogun.Count(g, s) != shogun.Count(h, s) {
		t.Fatal("orientation changed count")
	}
}

func TestTraceThroughAPI(t *testing.T) {
	g := shogun.GenerateErdosRenyi(200, 900, 6)
	s, _ := shogun.BuildSchedule(shogun.Triangle(), false)
	var buf bytes.Buffer
	cfg := shogun.DefaultSimConfig(shogun.SchemeShogun)
	cfg.NumPEs = 2
	cfg.Tracer = shogun.NewJSONLTracer(&buf)
	res, err := shogun.Simulate(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if int64(lines) != res.Tasks {
		t.Fatalf("trace lines %d != tasks %d", lines, res.Tasks)
	}

	sum := shogun.NewTraceSummary()
	cfg.Tracer = sum
	if _, err := shogun.Simulate(g, s, cfg); err != nil {
		t.Fatal(err)
	}
	if len(sum.Report()) == 0 {
		t.Fatal("empty trace summary")
	}
}

func TestWriteGraphAPI(t *testing.T) {
	g, _ := shogun.NewGraph(3, []shogun.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	if err := shogun.WriteGraph(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := shogun.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("round trip lost edges: %d", g2.NumEdges())
	}
}
