package shogun

import (
	"context"

	"shogun/internal/accel"
	"shogun/internal/sim"
)

// Scheme names a task scheduling scheme for the simulated accelerator.
type Scheme = accel.Scheme

// The available schemes (Table 1 of the paper). SchemeFingers is the
// pseudo-DFS baseline accelerator.
const (
	SchemeShogun      = accel.SchemeShogun
	SchemePseudoDFS   = accel.SchemePseudoDFS
	SchemeFingers     = accel.SchemeFingers
	SchemeDFS         = accel.SchemeDFS
	SchemeBFS         = accel.SchemeBFS
	SchemeParallelDFS = accel.SchemeParallelDFS
)

// SimConfig parameterizes the simulated accelerator (PE count, execution
// width, cache/DRAM/NoC models, Shogun task-tree geometry, optimization
// toggles).
type SimConfig = accel.Config

// SimResult carries the outcome of a simulated run: cycle count, exact
// embedding count, utilization and memory-system statistics.
type SimResult = accel.Result

// DefaultSimConfig returns the paper's Table 3 configuration for the
// given scheme: 10 PEs, task execution width 8, 12 dividers + 24 IUs per
// PE, 16 KB SPM, 32 KB 4-way private L1, shared L2, DDR4-like DRAM.
func DefaultSimConfig(scheme Scheme) SimConfig { return accel.DefaultConfig(scheme) }

// Simulate runs the cycle-level accelerator simulation of graph g with
// schedule s and returns the result. The simulation is deterministic and
// also computes the true embedding count, so callers can cross-check it
// against Count.
func Simulate(g *Graph, s *Schedule, cfg SimConfig) (*SimResult, error) {
	return SimulateContext(context.Background(), g, s, cfg)
}

// SimulateContext is Simulate under the run governor: the simulation
// observes ctx at cooperative checkpoints (every cfg.WatchdogPoll
// events), so a cancelled context stops the run within one poll
// interval, returning an error wrapping ErrSimCancelled. The config's
// watchdog budgets (Deadline, MaxEvents, MaxWall) bound runaway
// simulations; a budget trip wraps the matching sentinel. Internal
// invariant panics are contained and returned as *InvariantError with a
// diagnostic snapshot, and a drained event queue with work outstanding
// returns *DeadlockError reporting which semaphores hold which waiters.
func SimulateContext(ctx context.Context, g *Graph, s *Schedule, cfg SimConfig) (*SimResult, error) {
	a, err := accel.New(g, s, cfg)
	if err != nil {
		return nil, err
	}
	return a.RunContext(ctx)
}

// InvariantError is a typed error produced when an internal invariant
// panic is contained at the Simulate/Count boundary; it carries the
// panic value, stack, and a diagnostic snapshot of the engine and
// resource state at recovery time.
type InvariantError = sim.InvariantError

// DeadlockError reports a simulation whose event queue drained with
// work still outstanding, with a snapshot of the blocked resources.
type DeadlockError = sim.DeadlockError

// The run governor's stop sentinels; match with errors.Is.
var (
	// ErrSimCancelled reports a context cancellation observed at a
	// cooperative checkpoint.
	ErrSimCancelled = sim.ErrCancelled
	// ErrSimDeadline reports a simulated-time deadline (SimConfig.Deadline) hit.
	ErrSimDeadline = sim.ErrDeadline
	// ErrSimEventBudget reports an event-count budget (SimConfig.MaxEvents) hit.
	ErrSimEventBudget = sim.ErrEventBudget
	// ErrSimWallBudget reports a wall-clock budget (SimConfig.MaxWall) hit.
	ErrSimWallBudget = sim.ErrWallBudget
)
