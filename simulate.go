package shogun

import (
	"shogun/internal/accel"
)

// Scheme names a task scheduling scheme for the simulated accelerator.
type Scheme = accel.Scheme

// The available schemes (Table 1 of the paper). SchemeFingers is the
// pseudo-DFS baseline accelerator.
const (
	SchemeShogun      = accel.SchemeShogun
	SchemePseudoDFS   = accel.SchemePseudoDFS
	SchemeFingers     = accel.SchemeFingers
	SchemeDFS         = accel.SchemeDFS
	SchemeBFS         = accel.SchemeBFS
	SchemeParallelDFS = accel.SchemeParallelDFS
)

// SimConfig parameterizes the simulated accelerator (PE count, execution
// width, cache/DRAM/NoC models, Shogun task-tree geometry, optimization
// toggles).
type SimConfig = accel.Config

// SimResult carries the outcome of a simulated run: cycle count, exact
// embedding count, utilization and memory-system statistics.
type SimResult = accel.Result

// DefaultSimConfig returns the paper's Table 3 configuration for the
// given scheme: 10 PEs, task execution width 8, 12 dividers + 24 IUs per
// PE, 16 KB SPM, 32 KB 4-way private L1, shared L2, DDR4-like DRAM.
func DefaultSimConfig(scheme Scheme) SimConfig { return accel.DefaultConfig(scheme) }

// Simulate runs the cycle-level accelerator simulation of graph g with
// schedule s and returns the result. The simulation is deterministic and
// also computes the true embedding count, so callers can cross-check it
// against Count.
func Simulate(g *Graph, s *Schedule, cfg SimConfig) (*SimResult, error) {
	a, err := accel.New(g, s, cfg)
	if err != nil {
		return nil, err
	}
	return a.Run()
}
